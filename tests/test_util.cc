/**
 * @file
 * Unit tests for the utility module: RNG, strings, statistics,
 * regression and tables.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "util/regression.hh"
#include "util/rng.hh"
#include "util/stats.hh"
#include "util/str.hh"
#include "util/table.hh"

using namespace mprobe;

// ---------------------------------------------------------------
// Rng

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BelowCoversAllResidues)
{
    Rng r(7);
    std::set<uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(r.below(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(3);
    bool lo = false, hi = false;
    for (int i = 0; i < 2000; ++i) {
        int64_t v = r.range(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        lo |= v == -2;
        hi |= v == 2;
    }
    EXPECT_TRUE(lo);
    EXPECT_TRUE(hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, GaussianMoments)
{
    Rng r(13);
    double s = 0, s2 = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double g = r.gaussian();
        s += g;
        s2 += g * g;
    }
    EXPECT_NEAR(s / n, 0.0, 0.03);
    EXPECT_NEAR(s2 / n, 1.0, 0.05);
}

TEST(Rng, GaussianScaled)
{
    Rng r(17);
    double s = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        s += r.gaussian(5.0, 2.0);
    EXPECT_NEAR(s / n, 5.0, 0.1);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(19);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng r(23);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto orig = v;
    r.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(Rng, ForkIndependent)
{
    Rng a(29);
    Rng b = a.fork();
    EXPECT_NE(a.next(), b.next());
}

TEST(Rng, StreamForkIsOrderIndependent)
{
    // fork(id) must depend only on (state, id): splitting stream 7
    // first or last, or after forking other streams, is identical.
    Rng a(31), b(31);
    Rng a7 = a.fork(7);
    (void)b.fork(3);
    (void)b.fork(12345);
    Rng b7 = b.fork(7);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(a7.next(), b7.next());
}

TEST(Rng, StreamForkDoesNotAdvanceParent)
{
    Rng a(37), b(37);
    (void)a.fork(0);
    (void)a.fork(1);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, StreamForksDiffer)
{
    Rng a(41);
    Rng s0 = a.fork(0);
    Rng s1 = a.fork(1);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += s0.next() == s1.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, StreamForkDiffersFromParentStream)
{
    Rng a(43);
    Rng child = a.fork(5);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == child.next();
    EXPECT_LT(same, 2);
}

// ---------------------------------------------------------------
// Strings

TEST(Str, TrimRemovesEdges)
{
    EXPECT_EQ(trim("  a b  "), "a b");
    EXPECT_EQ(trim("\t\nx\r "), "x");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
}

TEST(Str, SplitPreservesEmptyFields)
{
    auto v = split("a,,b,", ',');
    ASSERT_EQ(v.size(), 4u);
    EXPECT_EQ(v[0], "a");
    EXPECT_EQ(v[1], "");
    EXPECT_EQ(v[2], "b");
    EXPECT_EQ(v[3], "");
}

TEST(Str, SplitWsDropsEmpty)
{
    auto v = splitWs("  one\t two \n three ");
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[0], "one");
    EXPECT_EQ(v[2], "three");
}

TEST(Str, ToLower)
{
    EXPECT_EQ(toLower("AbC-9"), "abc-9");
}

TEST(Str, StartsWith)
{
    EXPECT_TRUE(startsWith("mulldo", "mul"));
    EXPECT_FALSE(startsWith("mu", "mul"));
}

TEST(Str, ParseIntVariants)
{
    EXPECT_EQ(parseInt("42", "t"), 42);
    EXPECT_EQ(parseInt(" -7 ", "t"), -7);
    EXPECT_EQ(parseInt("0x10", "t"), 16);
}

TEST(Str, ParseDouble)
{
    EXPECT_DOUBLE_EQ(parseDouble("2.5", "t"), 2.5);
    EXPECT_DOUBLE_EQ(parseDouble("-1e3", "t"), -1000.0);
}

TEST(StrDeath, ParseIntRejectsGarbage)
{
    EXPECT_EXIT(parseInt("12x", "ctx"),
                testing::ExitedWithCode(1), "ctx");
}

// ---------------------------------------------------------------
// Stats

TEST(Stats, MeanAndStddev)
{
    std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
    EXPECT_DOUBLE_EQ(mean(v), 5.0);
    EXPECT_DOUBLE_EQ(stddev(v), 2.0);
}

TEST(Stats, EmptyVectorsAreZero)
{
    std::vector<double> v;
    EXPECT_EQ(mean(v), 0.0);
    EXPECT_EQ(stddev(v), 0.0);
    EXPECT_EQ(minOf(v), 0.0);
    EXPECT_EQ(maxOf(v), 0.0);
}

TEST(Stats, MinMax)
{
    std::vector<double> v{3, -1, 9, 4};
    EXPECT_EQ(minOf(v), -1.0);
    EXPECT_EQ(maxOf(v), 9.0);
}

TEST(Stats, PctAbsError)
{
    EXPECT_NEAR(pctAbsError(110, 100), 10.0, 1e-12);
    EXPECT_NEAR(pctAbsError(90, 100), 10.0, 1e-12);
}

TEST(Stats, PaaeAveragesErrors)
{
    std::vector<double> pred{110, 90};
    std::vector<double> real{100, 100};
    EXPECT_NEAR(paae(pred, real), 10.0, 1e-12);
}

TEST(Stats, PaaePerfect)
{
    std::vector<double> v{5, 6, 7};
    EXPECT_DOUBLE_EQ(paae(v, v), 0.0);
}

// ---------------------------------------------------------------
// Regression

TEST(Regression, RecoversExactLinearModel)
{
    // y = 3 + 2*x0 - 0.5*x1
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    Rng r(5);
    for (int i = 0; i < 50; ++i) {
        double a = r.uniform(0, 10), b = r.uniform(0, 10);
        x.push_back({a, b});
        y.push_back(3 + 2 * a - 0.5 * b);
    }
    auto fit = fitLeastSquares(x, y);
    EXPECT_NEAR(fit.intercept, 3.0, 1e-6);
    EXPECT_NEAR(fit.coeffs[0], 2.0, 1e-6);
    EXPECT_NEAR(fit.coeffs[1], -0.5, 1e-6);
    EXPECT_GT(fit.r2, 0.999999);
}

TEST(Regression, NonNegativeClampsAndRefits)
{
    // True weight of x1 is negative; NNLS must zero it and keep the
    // positive one close.
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    Rng r(6);
    for (int i = 0; i < 60; ++i) {
        double a = r.uniform(0, 10), b = r.uniform(0, 10);
        x.push_back({a, b});
        y.push_back(1 + 4 * a - 0.3 * b + r.gaussian(0, 0.01));
    }
    RegressionOptions opts;
    opts.nonNegative = true;
    auto fit = fitLeastSquares(x, y, opts);
    EXPECT_GE(fit.coeffs[0], 0.0);
    EXPECT_EQ(fit.coeffs[1], 0.0);
    EXPECT_NEAR(fit.coeffs[0], 4.0, 0.2);
}

TEST(Regression, NoInterceptGoesThroughOrigin)
{
    std::vector<std::vector<double>> x{{1}, {2}, {3}};
    std::vector<double> y{2, 4, 6};
    RegressionOptions opts;
    opts.fitIntercept = false;
    auto fit = fitLeastSquares(x, y, opts);
    EXPECT_EQ(fit.intercept, 0.0);
    EXPECT_NEAR(fit.coeffs[0], 2.0, 1e-9);
}

TEST(Regression, DegenerateColumnGetsZero)
{
    std::vector<std::vector<double>> x{{1, 0}, {2, 0}, {3, 0},
                                       {4, 0}};
    std::vector<double> y{2, 4, 6, 8};
    auto fit = fitLeastSquares(x, y);
    EXPECT_NEAR(fit.coeffs[0], 2.0, 1e-4);
    EXPECT_NEAR(fit.coeffs[1], 0.0, 1e-4);
}

TEST(Regression, ResidualsSumNearZeroWithIntercept)
{
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    Rng r(8);
    for (int i = 0; i < 40; ++i) {
        double a = r.uniform(0, 5);
        x.push_back({a});
        y.push_back(1 + a + r.gaussian(0, 0.5));
    }
    auto fit = fitLeastSquares(x, y);
    double s = 0;
    for (double e : fit.residuals)
        s += e;
    EXPECT_NEAR(s, 0.0, 1e-6);
}

TEST(Regression, PredictMatchesManualDot)
{
    RegressionResult r;
    r.coeffs = {2.0, -1.0};
    r.intercept = 0.5;
    EXPECT_DOUBLE_EQ(r.predict({3.0, 4.0}), 0.5 + 6.0 - 4.0);
}

TEST(Regression, SolveLinearSystem3x3)
{
    // x = 1, y = 2, z = 3 for a well-conditioned system.
    std::vector<double> a{2, 1, 0, 1, 3, 1, 0, 1, 2};
    std::vector<double> b{2 * 1 + 2, 1 + 6 + 3, 2 + 6};
    auto x = solveLinearSystem(a, b, 3);
    ASSERT_EQ(x.size(), 3u);
    EXPECT_NEAR(x[0], 1.0, 1e-9);
    EXPECT_NEAR(x[1], 2.0, 1e-9);
    EXPECT_NEAR(x[2], 3.0, 1e-9);
}

TEST(Regression, SolveSingularReturnsEmpty)
{
    std::vector<double> a{1, 2, 2, 4};
    std::vector<double> b{1, 2};
    EXPECT_TRUE(solveLinearSystem(a, b, 2).empty());
}

// Property sweep: OLS recovers random planted models.
class RegressionRecovery : public testing::TestWithParam<int>
{
};

TEST_P(RegressionRecovery, PlantedModelRecovered)
{
    Rng r(static_cast<uint64_t>(GetParam()) * 77 + 1);
    size_t p = 1 + r.pick(5);
    std::vector<double> w(p);
    for (auto &c : w)
        c = r.uniform(-3, 3);
    double b = r.uniform(-5, 5);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 120; ++i) {
        std::vector<double> row(p);
        double t = b;
        for (size_t j = 0; j < p; ++j) {
            row[j] = r.uniform(-4, 4);
            t += w[j] * row[j];
        }
        x.push_back(std::move(row));
        y.push_back(t);
    }
    auto fit = fitLeastSquares(x, y);
    EXPECT_NEAR(fit.intercept, b, 1e-6);
    for (size_t j = 0; j < p; ++j)
        EXPECT_NEAR(fit.coeffs[j], w[j], 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RegressionRecovery,
                         testing::Range(0, 12));

// ---------------------------------------------------------------
// TextTable

TEST(TextTable, AlignsColumns)
{
    TextTable t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "22"});
    std::ostringstream os;
    t.print(os);
    std::string s = os.str();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("longer"), std::string::npos);
    EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TextTable, CsvEscapesCommas)
{
    TextTable t({"a"});
    t.addRow({"x,y"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
}

TEST(TextTable, NumFormatting)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(TextTable, RowCount)
{
    TextTable t({"a", "b"});
    EXPECT_EQ(t.rows(), 0u);
    t.addRow({"1", "2"});
    EXPECT_EQ(t.rows(), 1u);
}

// ---------------------------------------------------------------
// ArgParser

#include "util/args.hh"

TEST(ArgParser, OptionsFlagsAndPositionals)
{
    ArgParser a;
    a.addOption("size", "4096", "body size");
    a.addOption("name", "", "a name");
    a.addFlag("run", "run it");
    const char *argv[] = {"tool", "--size", "128", "--name=x",
                          "--run", "pos1", "pos2"};
    a.parse(7, argv, "test tool");
    EXPECT_EQ(a.getInt("size"), 128);
    EXPECT_EQ(a.get("name"), "x");
    EXPECT_TRUE(a.getFlag("run"));
    ASSERT_EQ(a.positional().size(), 2u);
    EXPECT_EQ(a.positional()[0], "pos1");
}

TEST(ArgParser, DefaultsApplyWhenUnset)
{
    ArgParser a;
    a.addOption("size", "4096", "body size");
    a.addFlag("run", "run it");
    const char *argv[] = {"tool"};
    a.parse(1, argv, "test tool");
    EXPECT_EQ(a.getInt("size"), 4096);
    EXPECT_FALSE(a.getFlag("run"));
}

TEST(ArgParserDeath, UnknownOptionFatal)
{
    ArgParser a;
    a.addOption("size", "1", "x");
    const char *argv[] = {"tool", "--bogus", "3"};
    EXPECT_EXIT(a.parse(3, argv, "d"), testing::ExitedWithCode(1),
                "unknown option");
}

TEST(ArgParserDeath, MissingValueFatal)
{
    ArgParser a;
    a.addOption("size", "1", "x");
    const char *argv[] = {"tool", "--size"};
    EXPECT_EXIT(a.parse(2, argv, "d"), testing::ExitedWithCode(1),
                "needs a value");
}

TEST(ArgParser, UsageListsOptions)
{
    ArgParser a;
    a.addOption("size", "4096", "loop body size");
    a.addFlag("run", "run it");
    std::string u = a.usage("tool", "desc");
    EXPECT_NE(u.find("--size"), std::string::npos);
    EXPECT_NE(u.find("loop body size"), std::string::npos);
    EXPECT_NE(u.find("--run"), std::string::npos);
}

// ---------------------------------------------------------------
// Filesystem helpers

#include <filesystem>
#include <fstream>

#include "util/fileio.hh"

namespace
{

/** Number of "<base>.tmp.*" leftovers next to @p base. */
size_t
tempCount(const std::filesystem::path &base)
{
    size_t n = 0;
    std::string prefix = base.filename().string() + ".tmp.";
    for (const auto &e :
         std::filesystem::directory_iterator(base.parent_path()))
        if (e.path().filename().string().rfind(prefix, 0) == 0)
            ++n;
    return n;
}

} // namespace

TEST(AtomicWriteFile, PublishesContent)
{
    std::filesystem::path dir =
        std::filesystem::path(testing::TempDir()) /
        "mprobe-fileio-ok";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    std::filesystem::path target = dir / "out.txt";
    ASSERT_TRUE(atomicWriteFile(target.string(), "payload\n",
                                "test"));
    std::ifstream f(target);
    std::string line;
    ASSERT_TRUE(std::getline(f, line));
    EXPECT_EQ(line, "payload");
    EXPECT_EQ(tempCount(target), 0u);
}

TEST(AtomicWriteFile, FailedRenameRemovesTemp)
{
    // Make the final rename fail by using a non-empty directory as
    // the target path: the temp write succeeds, the publish
    // cannot. The temp must not be leaked — shard runs share cache
    // directories, and leaked .tmp.<pid>.<tid> files would
    // accumulate across processes.
    std::filesystem::path dir =
        std::filesystem::path(testing::TempDir()) /
        "mprobe-fileio-fail";
    std::filesystem::remove_all(dir);
    std::filesystem::path target = dir / "occupied";
    std::filesystem::create_directories(target);
    std::ofstream(target / "resident") << "x";
    EXPECT_FALSE(atomicWriteFile(target.string(), "payload\n",
                                 "test"));
    EXPECT_EQ(tempCount(target), 0u);
    // The target is untouched.
    EXPECT_TRUE(std::filesystem::is_directory(target));
}
