/**
 * @file
 * Tests for the workload generators: Table-2 suite pieces, SPEC
 * proxies, extremes, DAXPY and stressmark construction.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "microprobe/bootstrap.hh"
#include "util/stats.hh"
#include "workloads/daxpy.hh"
#include "workloads/extremes.hh"
#include "workloads/spec_proxies.hh"
#include "workloads/stressmarks.hh"
#include "workloads/suite.hh"

using namespace mprobe;

namespace
{

struct Fixture
{
    Architecture arch = Architecture::get("POWER7");
    Machine machine{arch.isa()};
};

} // namespace

TEST(IpcTargeting, HitsEasyTargets)
{
    Fixture f;
    SuiteOptions opts;
    opts.bodySize = 1024;
    auto slow = f.arch.isa().select([](const InstrDef &d) {
        return d.cls == InstrClass::IntSimple &&
               (d.name.back() == '.' ||
                d.name.rfind("cmp", 0) == 0 || d.name == "isel");
    });
    auto fast = f.arch.isa().select([&](const InstrDef &d) {
        return d.cls == InstrClass::IntSimple &&
               d.name.back() != '.' &&
               d.name.rfind("cmp", 0) != 0 && d.name != "isel";
    });
    for (double target : {1.0, 2.0, 3.0}) {
        GeneratedBench gb = generateIpcTargeted(
            f.arch, f.machine, fast, slow, target, "t", opts);
        EXPECT_NEAR(gb.achievedIpc, target, 0.25) << target;
    }
}

TEST(IpcTargeting, SubUnityTargetsViaSlowMix)
{
    Fixture f;
    SuiteOptions opts;
    opts.bodySize = 1024;
    auto fast = f.arch.isa().select([](const InstrDef &d) {
        return d.cls == InstrClass::IntComplex &&
               d.name.rfind("mul", 0) == 0;
    });
    auto slow = f.arch.isa().select([](const InstrDef &d) {
        return d.cls == InstrClass::IntComplex &&
               d.name.find("div") != std::string::npos;
    });
    GeneratedBench gb = generateIpcTargeted(
        f.arch, f.machine, fast, slow, 0.3, "lowipc", opts);
    EXPECT_NEAR(gb.achievedIpc, 0.3, 0.1);
}

TEST(Suite, SmallSuiteHasPaperStructure)
{
    Fixture f;
    SuiteOptions opts;
    opts.bodySize = 512;
    opts.perMemoryGroup = 1;
    opts.memoryCount = 2;
    opts.randomCount = 6;
    opts.ipcSearchBudget = 3;
    opts.gaPopulation = 4;
    opts.gaGenerations = 1;
    opts.extendUnitMix = false; // exact paper structure
    auto suite = generateTable2Suite(f.arch, f.machine, opts);

    // 35 + 11 + 12 + 14 + 20 targeted + 14 groups + 2 memory + 6
    // random.
    EXPECT_EQ(suite.size(), 35u + 11 + 12 + 14 + 20 + 14 + 2 + 6);

    std::set<std::string> groups;
    size_t randoms = 0;
    for (const auto &gb : suite) {
        EXPECT_FALSE(gb.program.body.empty());
        if (gb.category == BenchCategory::MemoryGroup)
            groups.insert(gb.group);
        randoms += gb.category == BenchCategory::Random;
    }
    EXPECT_EQ(groups.size(), 15u); // 14 + "Memory"
    EXPECT_EQ(randoms, 6u);
}

TEST(Suite, MemoryGroupDistributionsHold)
{
    Fixture f;
    SuiteOptions opts;
    opts.bodySize = 1024;
    opts.perMemoryGroup = 1;
    opts.memoryCount = 1;
    opts.randomCount = 0;
    opts.ipcSearchBudget = 1;
    opts.gaPopulation = 4;
    opts.gaGenerations = 1;
    auto suite = generateTable2Suite(f.arch, f.machine, opts);
    for (const auto &gb : suite) {
        if (gb.group != "Caches" && gb.group != "L1L2b")
            continue;
        RunResult r = f.machine.run(gb.program, ChipConfig{1, 1});
        double tot = r.chip.l1Hits + r.chip.l2Hits + r.chip.l3Hits +
                     r.chip.memAcc;
        if (gb.group == "Caches") {
            EXPECT_NEAR(r.chip.l1Hits / tot, 0.33, 0.02);
            EXPECT_NEAR(r.chip.l2Hits / tot, 0.33, 0.02);
            EXPECT_NEAR(r.chip.l3Hits / tot, 0.34, 0.02);
        } else {
            EXPECT_NEAR(r.chip.l1Hits / tot, 0.5, 0.02);
            EXPECT_NEAR(r.chip.l2Hits / tot, 0.5, 0.02);
        }
    }
}

namespace
{

/** Exact program equality (content, not pointer identity). */
bool
programsEqual(const Program &a, const Program &b)
{
    if (a.name != b.name || a.body.size() != b.body.size() ||
        a.streams.size() != b.streams.size())
        return false;
    for (size_t i = 0; i < a.body.size(); ++i) {
        const ProgInst &x = a.body[i], &y = b.body[i];
        if (x.op != y.op || x.depDist != y.depDist ||
            x.stream != y.stream || x.toggle != y.toggle ||
            x.takenRate != y.takenRate)
            return false;
    }
    for (size_t i = 0; i < a.streams.size(); ++i)
        if (a.streams[i].lines != b.streams[i].lines)
            return false;
    return true;
}

} // namespace

TEST(Suite, ParallelGenerationMatchesSerial)
{
    // The generation searches fan out on the campaign work queue;
    // any worker count must yield the bit-identical suite (every
    // random draw derives from the seed and the benchmark's own
    // index, never from scheduling).
    Fixture f;
    SuiteOptions opts;
    opts.bodySize = 256;
    opts.categories = {BenchCategory::ComplexInteger,
                       BenchCategory::UnitMix,
                       BenchCategory::MemoryGroup,
                       BenchCategory::Random};
    opts.perMemoryGroup = 1;
    opts.memoryCount = 1;
    opts.randomCount = 4;
    opts.ipcSearchBudget = 2;
    opts.gaPopulation = 4;
    opts.gaGenerations = 1;
    opts.extendUnitMix = false;

    opts.threads = 1;
    auto serial = generateTable2Suite(f.arch, f.machine, opts);
    // Every category — the searches *and* the memory/random builds
    // — must come out bit-identical at any worker count (the
    // acceptance bar: 1 thread vs 8 threads).
    for (int threads : {3, 8}) {
        opts.threads = threads;
        auto parallel = generateTable2Suite(f.arch, f.machine,
                                            opts);
        ASSERT_EQ(serial.size(), parallel.size()) << threads;
        for (size_t i = 0; i < serial.size(); ++i) {
            EXPECT_TRUE(programsEqual(serial[i].program,
                                      parallel[i].program))
                << threads << ": " << i << ": "
                << serial[i].program.name;
            EXPECT_EQ(serial[i].category, parallel[i].category)
                << i;
            EXPECT_EQ(serial[i].group, parallel[i].group) << i;
            EXPECT_DOUBLE_EQ(serial[i].achievedIpc,
                             parallel[i].achievedIpc)
                << i;
        }
    }
}

TEST(SpecProxies, TwentyEightDistinctWorkloads)
{
    Fixture f;
    auto proxies = generateSpecProxies(f.arch, 512);
    EXPECT_EQ(proxies.size(), 28u);
    std::set<std::string> names;
    for (const auto &p : proxies) {
        names.insert(p.name);
        EXPECT_EQ(p.body.size(), 512u);
    }
    EXPECT_EQ(names.size(), 28u);
    EXPECT_TRUE(names.count("mcf"));
    EXPECT_TRUE(names.count("xalancbmk"));
}

TEST(SpecProxies, MemoryBoundVsComputeBoundDiffer)
{
    Fixture f;
    Program mcf, namd;
    for (const auto &r : specRecipes()) {
        if (r.name == "mcf")
            mcf = generateSpecProxy(f.arch, r, 1024, 1);
        if (r.name == "namd")
            namd = generateSpecProxy(f.arch, r, 1024, 2);
    }
    RunResult rm = f.machine.run(mcf, {1, 1});
    RunResult rn = f.machine.run(namd, {1, 1});
    // namd is compute bound: higher IPC, almost no memory traffic.
    EXPECT_GT(rn.coreIpc, rm.coreIpc);
    double mcf_mem = rm.chip.memAcc / rm.chip.instrs;
    double namd_mem = rn.chip.memAcc / rn.chip.instrs;
    EXPECT_GT(mcf_mem, 5.0 * std::max(namd_mem, 1e-6));
}

TEST(SpecProxies, RecipesAreNormalizedMemDistributions)
{
    for (const auto &r : specRecipes()) {
        EXPECT_NEAR(r.l1 + r.l2 + r.l3 + r.mem, 1.0, 1e-6)
            << r.name;
    }
}

TEST(Extremes, SixCasesWithExpectedBehaviour)
{
    Fixture f;
    auto cases = generateExtremeCases(f.arch, 1024);
    ASSERT_EQ(cases.size(), 6u);

    std::map<std::string, RunResult> runs;
    for (const auto &c : cases)
        runs.emplace(c.name, f.machine.run(c.program, {1, 1}));

    // High > Low activity for both units.
    EXPECT_GT(runs.at("FXU High").coreIpc,
              2.0 * runs.at("FXU Low").coreIpc);
    EXPECT_GT(runs.at("VSU High").coreIpc,
              2.0 * runs.at("VSU Low").coreIpc);
    // L1 Loads: pure L1 traffic.
    const auto &l1 = runs.at("L1 Loads");
    EXPECT_GT(l1.chip.l1Hits, 0.0);
    EXPECT_EQ(l1.chip.memAcc, 0.0);
    // Main memory: dominated by DRAM accesses.
    const auto &mm = runs.at("Main memory");
    EXPECT_GT(mm.chip.memAcc, 0.0);
    EXPECT_LT(mm.coreIpc, 0.2);
    // FXU high stresses FXU, VSU high stresses VSU.
    EXPECT_GT(runs.at("FXU High").chip.fxuOps /
                  runs.at("FXU High").chip.instrs,
              0.5);
    EXPECT_GT(runs.at("VSU High").chip.vsuOps /
                  runs.at("VSU High").chip.instrs,
              0.9);
}

TEST(Daxpy, KernelShapeAndResidency)
{
    Fixture f;
    Program d = generateDaxpy(f.arch, 8 * 1024, false, 1024);
    EXPECT_EQ(d.streams.size(), 2u);
    RunResult r = f.machine.run(d, {1, 1});
    // L1-contained: after warm-up nearly all accesses hit the L1.
    double tot = r.chip.l1Hits + r.chip.l2Hits + r.chip.l3Hits +
                 r.chip.memAcc;
    EXPECT_GT(r.chip.l1Hits / tot, 0.95);
    // Loads and stores both present.
    EXPECT_GT(r.chip.stores, 0.0);
    EXPECT_GT(r.chip.loads, r.chip.stores);
}

TEST(Daxpy, SetCoversScalarAndVector)
{
    Fixture f;
    auto set = generateDaxpySet(f.arch, 512);
    EXPECT_EQ(set.size(), 6u);
    std::set<std::string> names;
    for (const auto &p : set)
        names.insert(p.name);
    EXPECT_TRUE(names.count("daxpy-8K"));
    EXPECT_TRUE(names.count("daxpy-vsx-16K"));
}

TEST(Stressmarks, BuildReplicatesSequence)
{
    Fixture f;
    auto picks = expertPicks(f.arch);
    Program p = buildStressmark(f.arch, picks, "s", 512);
    EXPECT_EQ(p.body[0].op, picks[0]);
    EXPECT_EQ(p.body[1].op, picks[1]);
    EXPECT_EQ(p.body[2].op, picks[2]);
    EXPECT_EQ(p.body[3].op, picks[0]);
    // All memory accesses L1-resident, no dependencies.
    RunResult r = f.machine.run(p, {1, 1});
    EXPECT_EQ(r.chip.memAcc, 0.0);
    EXPECT_EQ(r.chip.l2Hits, 0.0);
}

TEST(Stressmarks, ExpertManualSetRuns)
{
    Fixture f;
    auto set = expertManualSet(f.arch, 512);
    EXPECT_EQ(set.size(), 6u);
    for (const auto &p : set) {
        RunResult r = f.machine.run(p, {8, 4});
        EXPECT_GT(r.sensorWatts, f.machine.idleWatts({8, 4}));
    }
}

TEST(Stressmarks, MicroprobePicksMatchPaperSelection)
{
    // With the bootstrap done, the IPC*EPI heuristic must select
    // the paper's Table-3 toppers: mulldo, lxvw4x, xvnmsubmdp.
    Fixture f;
    BootstrapOptions opts;
    opts.bodySize = 512;
    bootstrapArchitecture(f.arch, f.machine, opts);
    auto picks = microprobePicks(f.arch);
    ASSERT_EQ(picks.size(), 3u);
    EXPECT_EQ(f.arch.isa().at(picks[0]).name, "mulldo");
    EXPECT_EQ(f.arch.isa().at(picks[1]).name, "lxvw4x");
    EXPECT_EQ(f.arch.isa().at(picks[2]).name, "xvnmsubmdp");
}

TEST(Stressmarks, ExplorationCovers540AndFindsSpread)
{
    Fixture f;
    auto triple = expertPicks(f.arch);
    StressmarkExploration ex = exploreSequences(
        f.arch, f.machine, triple, ChipConfig{8, 4}, 6, 504);
    EXPECT_EQ(ex.evaluations, 540u);
    EXPECT_EQ(ex.powers.size(), 540u);
    EXPECT_FALSE(ex.truncated);
    EXPECT_DOUBLE_EQ(ex.bestPower, maxOf(ex.powers));
    // Same mix, different order: a measurable power spread
    // (the paper reports up to 17%).
    double spread = (maxOf(ex.powers) - minOf(ex.powers)) /
                    maxOf(ex.powers);
    EXPECT_GT(spread, 0.05);
    EXPECT_EQ(ex.bestSeq.size(), 6u);
}

TEST(Stressmarks, ParallelSynthesisMatchesSerial)
{
    // Candidate *construction* fans out on the campaign queue next
    // to measurement; a 1-thread and an 8-thread exploration must
    // agree bit-for-bit (each sequence synthesizes from its own
    // point with a fixed seed — never from scheduling).
    Fixture f;
    auto triple = expertPicks(f.arch);
    auto explore = [&](int threads) {
        Campaign campaign(f.machine, measurementSpec(threads));
        // 4 slots over 3 candidates, all present: 36 sequences.
        return exploreSequences(f.arch, campaign, triple,
                                ChipConfig{2, 2}, 4, 128);
    };
    StressmarkExploration serial = explore(1);
    StressmarkExploration parallel = explore(8);
    EXPECT_EQ(serial.evaluations, 36u);
    ASSERT_EQ(serial.powers.size(), parallel.powers.size());
    for (size_t i = 0; i < serial.powers.size(); ++i) {
        EXPECT_DOUBLE_EQ(serial.powers[i], parallel.powers[i])
            << i;
        EXPECT_DOUBLE_EQ(serial.ipcs[i], parallel.ipcs[i]) << i;
    }
    EXPECT_EQ(serial.bestSeq, parallel.bestSeq);
    EXPECT_DOUBLE_EQ(serial.bestPower, parallel.bestPower);
}

TEST(Stressmarks, TruncatedExplorationIsFlagged)
{
    // A capped enumeration must reach the caller as a partial
    // exploration (Figure 9 marks such sets), not pass silently.
    Fixture f;
    auto triple = expertPicks(f.arch);
    StressmarkExploration ex =
        exploreSequences(f.arch, f.machine, triple,
                         ChipConfig{1, 1}, 6, 256, 25);
    EXPECT_TRUE(ex.truncated);
    EXPECT_EQ(ex.evaluations, 25u);
    EXPECT_EQ(ex.powers.size(), 25u);
    EXPECT_EQ(ex.ipcs.size(), 25u);
}
