#!/bin/sh
# Docs/flags consistency gate: every `--flag` the docs mention must
# exist in some tool's --help output, so renaming or removing an
# option without updating tools/README.md / docs/MODEL.md fails CI
# instead of shipping stale walkthroughs.
#
# Usage: tools/check_docs_flags.sh [build-dir]
# Exits non-zero listing the unknown flags, if any.
set -eu

build_dir="${1:-build}"
repo_root="$(dirname "$0")/.."
docs="$repo_root/tools/README.md $repo_root/docs/MODEL.md"

# Flags that belong to third-party tools quoted in the docs'
# shell snippets, not to ours.
allow="--build"

for doc in $docs; do
    [ -f "$doc" ] || { echo "missing doc: $doc" >&2; exit 1; }
done

found_tool=0
help_all=""
for tool in "$build_dir"/mprobe_*; do
    [ -x "$tool" ] || continue
    # Skip non-binaries a glob might pick up (e.g. *.d files).
    case "$tool" in *.*) continue ;; esac
    found_tool=1
    help_all="$help_all
$("$tool" --help 2>&1)"
done
if [ "$found_tool" -eq 0 ]; then
    echo "no mprobe_* tools in '$build_dir' — build them first" >&2
    exit 1
fi

status=0
# shellcheck disable=SC2086
for flag in $(grep -ohE -- '--[A-Za-z][A-Za-z0-9-]*' $docs |
              sort -u); do
    case " $allow " in *" $flag "*) continue ;; esac
    if ! printf '%s\n' "$help_all" | grep -q -- "$flag"; then
        echo "docs mention '$flag' but no tool's --help knows it" >&2
        status=1
    fi
done

[ "$status" -eq 0 ] && echo "docs flags check: OK"
exit "$status"
