/**
 * @file
 * mprobe-bootstrap: characterize an architecture and write the
 * completed micro-architecture definition file.
 *
 *   mprobe-bootstrap --arch POWER7 --out power7-full.uarch
 *
 * Runs the automatic bootstrap (two probing micro-benchmarks per
 * instruction; Section 2.1.2) and serializes the definition with
 * all discovered per-instruction properties, which later runs can
 * load with UarchDef::fromFile instead of re-measuring.
 */

#include <fstream>
#include <iostream>

#include "microprobe/bootstrap.hh"
#include "util/args.hh"
#include "util/logging.hh"

using namespace mprobe;

int
main(int argc, char **argv)
{
    ArgParser args;
    args.addOption("arch", "POWER7", "target architecture name");
    args.addOption("size", "2048",
                   "probe micro-benchmark body size");
    args.addOption("cores", "8", "measurement cores");
    args.addOption("smt", "1", "measurement SMT mode");
    args.addOption("out", "",
                   "output definition file (default: stdout)");
    args.addFlag("quiet", "suppress status messages");
    args.parse(argc, argv,
               "Bootstrap a micro-architecture definition by "
               "measurement.");

    if (args.getFlag("quiet"))
        setLogLevel(LogLevel::Quiet);

    Architecture arch = Architecture::get(args.get("arch"));
    Machine machine(arch.isa(),
                    arch.uarch().cacheGeometries(),
                    arch.uarch().clockGhz());

    BootstrapOptions bo;
    bo.bodySize = static_cast<size_t>(args.getInt("size"));
    bo.config = ChipConfig{static_cast<int>(args.getInt("cores")),
                           static_cast<int>(args.getInt("smt"))};
    auto entries = bootstrapArchitecture(arch, machine, bo);
    std::cerr << "characterized " << entries.size()
              << " instructions\n";

    std::string text = arch.uarch().toText();
    if (args.get("out").empty()) {
        std::cout << text;
    } else {
        std::ofstream f(args.get("out"));
        if (!f)
            fatal(cat("cannot write '", args.get("out"), "'"));
        f << text;
        std::cerr << "wrote " << args.get("out") << "\n";
    }
    return 0;
}
