/**
 * @file
 * mprobe-campaign: run a declarative measurement campaign — expand
 * a spec (suite categories x CMP/SMT configurations) into jobs,
 * execute them on a worker pool with result caching, and export the
 * samples for model training and figures.
 *
 *   mprobe-campaign --spec train.spec --csv samples.csv
 *   mprobe-campaign --threads 4 --cache-dir .mprobe-cache \
 *                   --json suite.json
 */

#include <algorithm>
#include <iostream>
#include <map>

#include "campaign/campaign.hh"
#include "campaign/export.hh"
#include "util/args.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "util/str.hh"
#include "util/table.hh"

using namespace mprobe;

int
main(int argc, char **argv)
{
    ArgParser args;
    args.addOption("spec", "",
                   "campaign spec file (defaults to the full "
                   "Table-2 suite across all 24 configurations)");
    args.addOption("arch", "POWER7", "target architecture name");
    args.addOption("configs", "",
                   "override: comma-separated cores-smt list or "
                   "'all'");
    args.addOption("threads", "",
                   "override: worker threads (0 = one per "
                   "hardware thread)");
    args.addOption("cache-dir", "",
                   "override: on-disk result cache directory");
    args.addOption("salt", "",
                   "override: extra measurement salt");
    args.addOption("csv", "", "export samples as CSV to this path");
    args.addOption("json", "",
                   "export samples as JSON to this path");
    args.addFlag("quiet", "suppress status messages");
    args.parse(argc, argv,
               "Run a measurement campaign over generated "
               "micro-benchmarks and CMP/SMT configurations.");

    if (args.getFlag("quiet"))
        setLogLevel(LogLevel::Quiet);

    CampaignSpec spec;
    if (!args.get("spec").empty())
        spec = loadCampaignSpec(args.get("spec"));
    if (!args.get("configs").empty())
        spec.configs =
            parseConfigList(args.get("configs"), "--configs");
    if (!args.get("threads").empty())
        spec.threads = static_cast<int>(args.getInt("threads"));
    if (!args.get("cache-dir").empty())
        spec.cacheDir = args.get("cache-dir");
    if (!args.get("salt").empty())
        spec.salt = static_cast<uint64_t>(
            parseInt(args.get("salt"), "--salt"));

    std::cout << spec.summary() << "\n";

    Architecture arch = Architecture::get(args.get("arch"));
    Machine machine(arch.isa(), arch.uarch().cacheGeometries(),
                    arch.uarch().clockGhz());

    Campaign campaign(machine, spec);
    CampaignResult res = campaign.run(arch);

    // Per-source summary of what was measured.
    struct SourceAgg
    {
        size_t workloads = 0;
        std::vector<double> powers;
    };
    std::map<std::string, SourceAgg> agg;
    for (const auto &w : res.workloads)
        ++agg[w.source].workloads;
    for (size_t i = 0; i < res.samples.size(); ++i)
        agg[res.workloads[res.jobs[i].workload].source]
            .powers.push_back(res.samples[i].powerWatts);

    TextTable t({"Source", "Workloads", "Samples", "Min W",
                 "Mean W", "Max W"});
    for (const auto &[name, a] : agg)
        t.addRow({name, std::to_string(a.workloads),
                  std::to_string(a.powers.size()),
                  TextTable::num(minOf(a.powers), 2),
                  TextTable::num(mean(a.powers), 2),
                  TextTable::num(maxOf(a.powers), 2)});
    t.print(std::cout);

    size_t total = res.cacheHits + res.cacheMisses;
    std::cout << res.samples.size() << " samples; cache: "
              << res.cacheHits << " hits / " << res.cacheMisses
              << " misses";
    if (total > 0 && !spec.cacheDir.empty())
        std::cout << " ("
                  << TextTable::num(100.0 * res.cacheHits /
                                        static_cast<double>(total),
                                    1)
                  << "% hit rate)";
    std::cout << "\n";

    if (!args.get("csv").empty()) {
        exportSamples(args.get("csv"), res.samples,
                      SampleFormat::Csv);
        std::cout << "wrote " << args.get("csv") << "\n";
    }
    if (!args.get("json").empty()) {
        exportSamples(args.get("json"), res.samples,
                      SampleFormat::Json);
        std::cout << "wrote " << args.get("json") << "\n";
    }
    return 0;
}
