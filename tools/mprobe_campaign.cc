/**
 * @file
 * mprobe-campaign: run a declarative measurement campaign — expand
 * a spec (suite categories x CMP/SMT configurations) into jobs,
 * execute them on a worker pool with result caching, and export the
 * samples for model training and figures.
 *
 *   mprobe-campaign --spec train.spec --csv samples.csv
 *   mprobe-campaign --threads 4 --cache-dir .mprobe-cache \
 *                   --json suite.json
 *   mprobe-campaign --spec train.spec --cache-dir .mprobe-cache \
 *                   --resume
 *   mprobe-campaign --spec train.spec --cache-dir shared \
 *                   --shard 0/2          # and 1/2 elsewhere
 *   mprobe-campaign --spec train.spec --cache-dir shared \
 *                   --serve              # on every fleet host
 *   mprobe-campaign --cache-dir shared --merge --csv samples.csv
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>

#include "campaign/campaign.hh"
#include "campaign/claims.hh"
#include "campaign/export.hh"
#include "campaign/manifest.hh"
#include "obs/metrics.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"
#include "util/args.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "util/str.hh"
#include "util/table.hh"

using namespace mprobe;

namespace
{

/** "4-2", "4-2 @2.5GHz" or "4-2 @2.5GHz @0.92V" deployment label
 * of a manifest entry. */
std::string
entryPoint(const ManifestEntry &e)
{
    std::string label = e.config.label();
    if (e.freqGhz > 0.0)
        label = cat(label, " @", e.freqGhz, "GHz");
    if (e.vdd > 0.0)
        label = cat(label, " @", e.vdd, "V");
    return label;
}

/**
 * Resume reporting: load the manifest persisted next to the cache
 * and list what an interrupted run left unfinished. The run that
 * follows completes exactly those jobs — finished ones are cache
 * hits by construction.
 */
void
reportResume(const CampaignSpec &spec, uint64_t machine_fp)
{
    if (spec.cacheDir.empty())
        fatal("--resume needs a cache directory (--cache-dir or "
              "cache_dir in the spec): the manifest lives there");
    CampaignManifest m;
    if (!loadManifest(manifestPath(spec.cacheDir), m))
        fatal(cat("--resume: no manifest under '", spec.cacheDir,
                  "' — nothing to resume (run a campaign with "
                  "this cache directory first)"));
    // Compare job-key-relevant content, not the summary string: a
    // different worker count is the same campaign; a different
    // body size / seed / salt / config set / machine is not, even
    // when the summaries read identically.
    if (m.fingerprint != campaignFingerprint(spec, machine_fp)) {
        warn(cat("--resume: spec mismatch; the manifest was "
                 "written by \"", m.spec, "\" with different "
                 "content — its progress does not apply to this "
                 "campaign, which runs in full (cache entries "
                 "never clash: job keys hash the content)"));
        return;
    }
    ResultCache probe(spec.cacheDir);
    auto rem = remainingJobs(m, probe);
    std::cout << "resume: " << m.entries.size() - rem.size()
              << " of " << m.entries.size()
              << " jobs already measured, " << rem.size()
              << " remaining\n";
    const size_t list_cap = 20;
    for (size_t i = 0; i < rem.size() && i < list_cap; ++i)
        std::cout << "  todo: " << rem[i].workload << " @ "
                  << entryPoint(rem[i]) << " (" << rem[i].source
                  << ")\n";
    if (rem.size() > list_cap)
        std::cout << "  ... and " << rem.size() - list_cap
                  << " more\n";
    if (rem.empty())
        std::cout << "campaign is already complete; re-running "
                     "only re-exports\n";
}

/**
 * CI/perf-trajectory metrics of one campaign run. Without
 * @p include_job_seconds the bulky per-job timing array is
 * omitted, leaving only the aggregates the perf gate compares —
 * the form baselines are committed in (--metrics-json-stable), so
 * CI needs no post-processing before diffing against them.
 */
void
writeMetricsJson(const std::string &path, const CampaignSpec &spec,
                 const CampaignResult &res, bool include_job_seconds)
{
    size_t total = res.cacheHits + res.cacheMisses;
    double hit_rate =
        total > 0
            ? static_cast<double>(res.cacheHits) /
                  static_cast<double>(total)
            : 0.0;
    double jobs_per_sec =
        res.measureSeconds > 0
            ? static_cast<double>(res.jobs.size()) /
                  res.measureSeconds
            : 0.0;
    std::ofstream f(path);
    if (!f)
        fatal(cat("cannot write metrics file '", path, "'"));
    f << "{\n"
      << "  \"schema_version\": 2,\n"
      << "  \"workloads\": " << res.workloads.size() << ",\n"
      << "  \"jobs\": " << res.jobs.size() << ",\n"
      << "  \"threads\": " << spec.threads << ",\n"
      << "  \"suite_generation_seconds\": "
      << res.generationSeconds << ",\n"
      << "  \"measurement_seconds\": " << res.measureSeconds
      << ",\n"
      << "  \"jobs_per_second\": " << jobs_per_sec << ",\n"
      << "  \"cache_hits\": " << res.cacheHits << ",\n"
      << "  \"cache_misses\": " << res.cacheMisses << ",\n"
      << "  \"cache_hit_rate\": " << hit_rate << ",\n"
      << "  \"cache_corrupt\": " << res.cacheCorrupt << ",\n"
      << "  \"claims_acquired\": " << res.claimsAcquired << ",\n"
      << "  \"claims_stolen\": " << res.claimsStolen << ",\n"
      // The perf-gate tripwire: a baseline measured with tracing
      // enabled at runtime is refused (tools/refresh_baseline.sh
      // and the CI gate grep for this field).
      << "  \"trace_active\": "
      << (obs::traceEverEnabled() ? "true" : "false");
    if (include_job_seconds) {
        // The full observability registry — counters, gauges,
        // histograms — rides only in the full variant; the stable
        // variant stays the lean committed-baseline format.
        f << ",\n  \"metrics\": ";
        obs::metricsWriteJson(f, "  ");
        // Per-job wall seconds: what --calibrate refits the
        // JobCostModel from. Kept last so the aggregate fields
        // above stay easy to eyeball.
        f << ",\n  \"job_seconds\": [";
        for (size_t i = 0; i < res.jobs.size(); ++i) {
            const CampaignJob &job = res.jobs[i];
            size_t body =
                res.workloads[job.workload].program.body.size();
            f << (i ? "," : "") << "\n    {\"cores\": "
              << job.config.cores
              << ", \"smt\": " << job.config.smt
              << ", \"body\": " << body << ", \"seconds\": "
              << (i < res.jobSeconds.size() ? res.jobSeconds[i]
                                            : 0.0)
              << ", \"cached\": "
              << ((i < res.jobCached.size() && res.jobCached[i])
                      ? "true"
                      : "false")
              << "}";
        }
        f << "\n  ]";
    }
    f << "\n}\n";
    if (!f.flush())
        fatal(cat("short write to metrics file '", path, "'"));
}

/**
 * Parse the job_seconds array back out of a --metrics-json file
 * (this tool's own writer format; not a general JSON parser).
 */
std::vector<JobTiming>
readMetricsTimings(const std::string &path)
{
    std::ifstream f(path);
    if (!f)
        fatal(cat("cannot read metrics file '", path, "'"));
    std::ostringstream os;
    os << f.rdbuf();
    std::string text = os.str();

    auto list_at = text.find("\"job_seconds\"");
    if (list_at == std::string::npos)
        fatal(cat("no \"job_seconds\" array in '", path,
                  "' — re-run the campaign with --metrics-json "
                  "using this build"));

    auto field = [&](const std::string &obj, const char *name,
                     double &value) {
        auto at = obj.find(cat("\"", name, "\":"));
        if (at == std::string::npos)
            return false;
        at = obj.find(':', at);
        try {
            value = std::stod(obj.substr(at + 1));
        } catch (const std::exception &) {
            return false;
        }
        return true;
    };

    std::vector<JobTiming> out;
    size_t pos = text.find('[', list_at);
    size_t end = text.find(']', list_at);
    while (pos != std::string::npos && pos < end) {
        size_t open = text.find('{', pos);
        if (open == std::string::npos || open > end)
            break;
        size_t close = text.find('}', open);
        if (close == std::string::npos)
            break;
        std::string obj = text.substr(open, close - open + 1);
        JobTiming t;
        double cores = 0, smt = 0, body = 0;
        if (!field(obj, "cores", cores) ||
            !field(obj, "smt", smt) ||
            !field(obj, "body", body) ||
            !field(obj, "seconds", t.seconds))
            fatal(cat("malformed job_seconds entry in '", path,
                      "': ", obj));
        t.config.cores = static_cast<int>(cores);
        t.config.smt = static_cast<int>(smt);
        t.bodySize = static_cast<size_t>(body);
        t.cached = obj.find("\"cached\": true") !=
                   std::string::npos;
        out.push_back(t);
        pos = close + 1;
    }
    return out;
}

/**
 * The calibration step (--calibrate): refit the JobCostModel
 * constants from the per-job wall seconds a previous run recorded
 * with --metrics-json. Exits the process (no measurement).
 */
[[noreturn]] void
runCalibrate(const std::string &metrics_path)
{
    std::vector<JobTiming> timings =
        readMetricsTimings(metrics_path);
    CostCalibration cal = calibrateJobCostModel(timings);
    std::cout << "calibrate: " << timings.size()
              << " recorded jobs, " << cal.used
              << " cold measurements used\n";
    if (!cal.ok)
        fatal("--calibrate: not enough signal to fit (need at "
              "least two cold jobs of different threads x body "
              "size and a positive slope) — run a cold campaign "
              "with a mixed config set first");
    JobCostModel def;
    std::cout << "  per-job overhead:    "
              << TextTable::num(cal.perJobSeconds * 1e6, 1)
              << " us\n"
              << "  per slot-thread:     "
              << TextTable::num(cal.perSlotThreadSeconds * 1e9, 2)
              << " ns\n"
              << "  fit R^2:             "
              << TextTable::num(cal.r2, 3) << "\n"
              << "  fitted JobCostModel: perJob = "
              << TextTable::num(cal.fitted.perJob, 1)
              << " slot-units (shipped default "
              << TextTable::num(def.perJob, 1) << ")\n";
    double rel = def.perJob > 0
                     ? cal.fitted.perJob / def.perJob
                     : 0.0;
    if (rel > 2.0 || (rel > 0 && rel < 0.5))
        std::cout << "the fitted per-job overhead differs from "
                     "the shipped default by more than 2x on "
                     "this host; consider updating "
                     "JobCostModel::perJob\n";
    else
        std::cout << "the shipped default is within 2x of this "
                     "host's fit; no change needed\n";
    std::exit(0);
}

/**
 * The merge step of a sharded or served campaign: read the
 * manifest, verify every job key has a cached result, and export
 * the unified sample set in manifest (= job) order — byte identical
 * to the export of the same campaign run unsharded. Exits the
 * process (no measurement happens on this path) with a distinct,
 * scriptable code per failure mode:
 *
 *   0  complete; export written
 *   3  the cache directory does not exist
 *   4  the cache directory holds no manifest
 *   5  manifest present but some jobs are unfinished
 */
[[noreturn]] void
runMerge(const std::string &cache_dir,
         const std::string &manifest_dir, double claim_ttl,
         const std::string &csv, const std::string &json)
{
    if (cache_dir.empty())
        fatal("--merge needs a cache directory (--cache-dir or "
              "cache_dir in the spec): the manifest and the "
              "shard results live there");
    // Probe existence before constructing a ResultCache: its
    // constructor creates the directory, which would silently turn
    // a mistyped path into "no manifest" plus an empty directory.
    if (!std::filesystem::is_directory(cache_dir)) {
        std::cout << "merge: cache directory '" << cache_dir
                  << "' does not exist — check the path (workers "
                     "create it on their first run)\n";
        std::exit(3);
    }
    const std::string mdir =
        manifest_dir.empty() ? cache_dir : manifest_dir;
    CampaignManifest m;
    if (!loadManifest(manifestPath(mdir), m)) {
        std::cout << "merge: no manifest under '" << mdir
                  << "' — run the campaign (shards or --serve "
                     "workers) against this cache directory "
                     "first\n";
        std::exit(4);
    }
    ResultCache cache(cache_dir);
    ManifestCollection col = collectManifestSamples(m, cache);
    if (!col.missing.empty()) {
        // Distinguish "workers still running" from "work
        // abandoned": a fresh claim file on a missing job means a
        // live worker holds it right now.
        ClaimDir claims(cache_dir, "", claim_ttl);
        size_t claimed = 0;
        for (const ManifestEntry &e : col.missing) {
            ClaimInfo info;
            if (claims.info(e.key, info) &&
                info.ageSeconds >= 0.0 &&
                info.ageSeconds <= claims.ttlSeconds())
                ++claimed;
        }
        std::cout << "merge: manifest present but "
                  << col.missing.size() << " of "
                  << m.entries.size() << " jobs unfinished ("
                  << claimed << " currently claimed)\n";
        const size_t list_cap = 20;
        for (size_t i = 0;
             i < col.missing.size() && i < list_cap; ++i)
            std::cout << "  missing: " << col.missing[i].workload
                      << " @ " << entryPoint(col.missing[i])
                      << " (" << col.missing[i].source << ")\n";
        if (col.missing.size() > list_cap)
            std::cout << "  ... and "
                      << col.missing.size() - list_cap
                      << " more\n";
        if (claimed > 0)
            std::cout << "workers are still on the job — wait "
                         "and merge again\n";
        else
            std::cout << "no live claims — finish the campaign "
                         "(remaining shards, --resume, or a "
                         "--serve worker) into this cache "
                         "directory, then merge again\n";
        std::exit(5);
    }
    std::cout << "merge: " << col.samples.size()
              << " samples assembled from \"" << m.spec << "\"\n";
    if (csv.empty() && json.empty())
        warn("--merge without --csv/--json verifies completeness "
             "but exports nothing");
    if (!csv.empty()) {
        exportSamples(csv, col.samples, SampleFormat::Csv);
        std::cout << "wrote " << csv << "\n";
    }
    if (!json.empty()) {
        exportSamples(json, col.samples, SampleFormat::Json);
        std::cout << "wrote " << json << "\n";
    }
    std::exit(0);
}

/**
 * The fleet-status step (--fleet-status): read every worker's
 * telemetry file from the shared cache directory and print the
 * live per-worker table. Exits the process (no measurement).
 */
[[noreturn]] void
runFleetStatus(const std::string &cache_dir)
{
    if (cache_dir.empty())
        fatal("--fleet-status needs a cache directory "
              "(--cache-dir or cache_dir in the spec): workers "
              "publish their telemetry there");
    std::vector<obs::WorkerTelemetry> fleet =
        obs::readFleetTelemetry(cache_dir);
    if (fleet.empty()) {
        std::cout << "fleet: no worker telemetry under '"
                  << cache_dir
                  << "' (workers publish it while serving; files "
                     "are <worker-id>.telemetry)\n";
        std::exit(0);
    }
    TextTable t({"Worker", "Jobs", "Hits", "Acquired", "Stolen",
                 "Jobs/s", "Hit rate", "Age s"});
    for (const obs::WorkerTelemetry &w : fleet)
        t.addRow({w.worker, std::to_string(w.jobs),
                  std::to_string(w.hits),
                  std::to_string(w.acquired),
                  std::to_string(w.stolen),
                  TextTable::num(w.jobsPerSecond, 2),
                  TextTable::num(w.hitRate, 2),
                  w.ageSeconds >= 0.0
                      ? TextTable::num(w.ageSeconds, 0)
                      : std::string("?")});
    t.print(std::cout);
    std::cout << fleet.size()
              << (fleet.size() == 1 ? " worker" : " workers")
              << " reporting (age is seconds since each last "
                 "published; stale ages mean finished or dead "
                 "workers)\n";
    std::exit(0);
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args;
    args.addOption("spec", "",
                   "campaign spec file (defaults to the full "
                   "Table-2 suite across all 24 configurations)");
    args.addOption("arch", "POWER7", "target architecture name");
    args.addOption("configs", "",
                   "override: comma-separated cores-smt list or "
                   "'all'");
    args.addOption("freqs", "",
                   "override: DVFS frequency sweep in GHz "
                   "(comma-separated, e.g. 2.0,2.5,3.0,3.5); "
                   "every (workload, config) pair is measured at "
                   "every listed operating point");
    args.addOption("vdds", "",
                   "override: undervolting sweep in volts "
                   "(comma-separated, e.g. 0.85,0.9,0.95,1.0), "
                   "cross-producted with the frequency axis; "
                   "points below a workload's Vmin come back "
                   "flagged unreliable");
    args.addOption("threads", "",
                   "override: worker threads (0 = one per "
                   "hardware thread)");
    args.addOption("cache-dir", "",
                   "override: on-disk result cache directory");
    args.addOption("salt", "",
                   "override: extra measurement salt");
    args.addOption("shard", "",
                   "measure only shard i/n of the job list (e.g. "
                   "0/4), partitioned by estimated job cost "
                   "(cost-weighted striping; see --plan); all "
                   "shards share --cache-dir, --merge assembles "
                   "the union");
    args.addOption("progress-seconds", "",
                   "override: seconds between progress lines "
                   "while measuring (0 disables)");
    args.addFlag("serve",
                 "fleet mode: pull jobs from the campaign's full "
                 "pool through per-job claim files in the shared "
                 "cache directory instead of a fixed --shard "
                 "slice; any number of workers on any hosts "
                 "cooperate, steal from dead peers after the "
                 "claim TTL, and each returns the complete "
                 "campaign");
    args.addOption("claim-ttl", "",
                   "override: seconds before a --serve claim with "
                   "no heartbeat counts as dead and its job is "
                   "stolen (default 60; raise it above the "
                   "longest single-job runtime)");
    args.addOption("claim-poll", "",
                   "override: seconds a --serve worker sleeps "
                   "when live peers hold every remaining job "
                   "(default 0.5)");
    args.addOption("worker-id", "",
                   "override: claim-file worker identity "
                   "(default host:pid)");
    args.addOption("manifest-dir", "",
                   "override: directory of the campaign manifest "
                   "when it is kept apart from the shared cache "
                   "(the drop-directory service writes one "
                   "manifest per campaign; point --merge here)");
    args.addFlag("merge",
                 "no measurement: verify every manifest job has a "
                 "cached result and export the unified samples "
                 "(the merge step after sharded or --serve runs); "
                 "exits 3 when the cache dir is missing, 4 when "
                 "it has no manifest, 5 when jobs are "
                 "unfinished");
    args.addFlag("plan",
                 "dry run: generate and expand the campaign, print "
                 "the cost-striped per-shard schedule (job counts, "
                 "estimated costs, round-robin comparison) and "
                 "exit without measuring; --shard i/n sets the "
                 "shard count");
    args.addOption("csv", "", "export samples as CSV to this path");
    args.addOption("json", "",
                   "export samples as JSON to this path");
    args.addOption("metrics-json", "",
                   "write run metrics (generation/measure wall "
                   "time, jobs/sec, cache hit rate, per-job wall "
                   "seconds) as JSON to this path");
    args.addOption("metrics-json-stable", "",
                   "like --metrics-json but without the per-job "
                   "job_seconds array: only the aggregate fields "
                   "the CI perf gate compares (the format "
                   "BENCH_baseline.json is committed in)");
    args.addOption("calibrate", "",
                   "no measurement: refit the JobCostModel "
                   "constants from the per-job wall seconds of a "
                   "previous run's --metrics-json file and print "
                   "them");
    args.addFlag("resume",
                 "list the jobs an interrupted campaign left "
                 "unfinished (from the cache-dir manifest), then "
                 "complete only those");
    args.addOption("trace", "",
                   "record a Chrome trace-event timeline of this "
                   "run (campaign phases, per-job spans, claim "
                   "events, sim stages) and write it to this path "
                   "at exit; load it in chrome://tracing or "
                   "https://ui.perfetto.dev. Observability only: "
                   "exports stay byte-identical");
    args.addFlag("fleet-status",
                 "no measurement: print the live per-worker "
                 "telemetry table of the fleet sharing --cache-dir "
                 "(each --serve worker publishes "
                 "<worker-id>.telemetry there), then exit");
    args.addFlag("quiet", "suppress status messages");
    args.parse(argc, argv,
               "Run a measurement campaign over generated "
               "micro-benchmarks and CMP/SMT configurations.");

    if (args.getFlag("quiet"))
        setLogLevel(LogLevel::Quiet);

    CampaignSpec spec;
    if (!args.get("spec").empty())
        spec = loadCampaignSpec(args.get("spec"));
    if (!args.get("configs").empty())
        spec.configs =
            parseConfigList(args.get("configs"), "--configs");
    if (!args.get("freqs").empty())
        spec.freqs = parseFreqList(args.get("freqs"), "--freqs");
    if (!args.get("vdds").empty())
        spec.vdds = parseVddList(args.get("vdds"), "--vdds");
    if (!args.get("threads").empty())
        spec.threads = static_cast<int>(args.getInt("threads"));
    if (!args.get("cache-dir").empty())
        spec.cacheDir = args.get("cache-dir");
    if (!args.get("salt").empty())
        spec.salt = static_cast<uint64_t>(
            parseInt(args.get("salt"), "--salt"));
    if (!args.get("shard").empty())
        parseShard(args.get("shard"), "--shard", spec.shardIndex,
                   spec.shardCount);
    if (args.getFlag("serve"))
        spec.serve = true;
    if (!args.get("claim-ttl").empty()) {
        spec.claimTtlSeconds =
            parseDouble(args.get("claim-ttl"), "--claim-ttl");
        if (spec.claimTtlSeconds <= 0)
            fatal("--claim-ttl must be > 0 seconds");
    }
    if (!args.get("claim-poll").empty()) {
        spec.claimPollSeconds =
            parseDouble(args.get("claim-poll"), "--claim-poll");
        if (spec.claimPollSeconds <= 0)
            fatal("--claim-poll must be > 0 seconds");
    }
    if (!args.get("worker-id").empty())
        spec.workerId = args.get("worker-id");
    if (!args.get("manifest-dir").empty())
        spec.manifestDir = args.get("manifest-dir");
    if (!args.get("progress-seconds").empty()) {
        spec.progressSeconds =
            parseDouble(args.get("progress-seconds"),
                        "--progress-seconds");
        if (spec.progressSeconds < 0)
            fatal("--progress-seconds must be >= 0 "
                  "(0 = disabled)");
    }

    // Tracing switches on before any campaign work so generation
    // and expansion spans are captured too; the single flush
    // happens at exit, when every worker thread has joined.
    const std::string trace_path = args.get("trace");
    if (!trace_path.empty())
        obs::traceEnable();

    if (args.getFlag("fleet-status")) {
        if (args.getFlag("merge") || args.getFlag("resume") ||
            args.getFlag("plan") || spec.serve)
            fatal("--fleet-status is a standalone step; it does "
                  "not combine with --merge, --plan, --serve or "
                  "--resume");
        runFleetStatus(spec.cacheDir);
    }

    if (!args.get("calibrate").empty()) {
        if (args.getFlag("merge") || args.getFlag("resume") ||
            args.getFlag("plan"))
            fatal("--calibrate is a standalone step; it does not "
                  "combine with --merge, --plan or --resume");
        runCalibrate(args.get("calibrate"));
    }

    if (args.getFlag("merge")) {
        // Check the effective spec, so a `shard =` or `serve =`
        // key loaded from the spec file is rejected like the
        // flags.
        if (args.getFlag("resume") || args.getFlag("plan") ||
            spec.sharded() || spec.serve)
            fatal("--merge is a standalone step; it does not "
                  "combine with --shard, --serve, --plan or "
                  "--resume");
        runMerge(spec.cacheDir, spec.manifestDir,
                 spec.claimTtlSeconds, args.get("csv"),
                 args.get("json"));
    }

    std::cout << spec.summary() << "\n";

    Architecture arch = Architecture::get(args.get("arch"));
    Machine machine(arch.isa(), arch.uarch().cacheGeometries(),
                    arch.uarch().clockGhz());

    if (args.getFlag("plan")) {
        if (args.getFlag("resume") || spec.serve)
            fatal("--plan is a dry run; it does not combine with "
                  "--resume or --serve");
        // A plan is shard-count-generic: normalize the spec to
        // unsharded and drop the cache directory (a dry run
        // touches no shared state, not even a mkdir), then
        // partition for the requested count.
        int plan_count = spec.shardCount;
        CampaignSpec pspec = spec;
        pspec.shardIndex = 0;
        pspec.shardCount = 1;
        pspec.cacheDir.clear();
        Campaign campaign(machine, pspec);
        CampaignPlan plan = campaign.plan(arch, plan_count);

        TextTable t({"Shard", "Jobs", "Est. cost", "Share",
                     "Round-robin cost"});
        for (int s = 0; s < plan_count; ++s) {
            const auto &sp = plan.shards[static_cast<size_t>(s)];
            const auto &rp =
                plan.roundRobin[static_cast<size_t>(s)];
            t.addRow({cat(s, "/", plan_count),
                      std::to_string(sp.jobs.size()),
                      TextTable::num(sp.cost, 0),
                      cat(TextTable::num(plan.totalCost > 0
                                             ? 100.0 * sp.cost /
                                                   plan.totalCost
                                             : 0.0,
                                         1),
                          "%"),
                      TextTable::num(rp.cost, 0)});
        }
        t.print(std::cout);
        std::cout << plan.totalJobs << " jobs, total estimated "
                  << "cost " << TextTable::num(plan.totalCost, 0)
                  << "; max/min shard cost "
                  << TextTable::num(plan.stripedImbalance, 2)
                  << " cost-striped vs "
                  << TextTable::num(plan.roundRobinImbalance, 2)
                  << " round-robin\n"
                  << "dry run: nothing was measured (drop --plan "
                  << "to execute)\n";
        return 0;
    }

    if (args.getFlag("resume"))
        reportResume(spec, machine.fingerprint());

    Campaign campaign(machine, spec);
    CampaignResult res = campaign.run(arch);

    // Per-source summary of what was measured.
    struct SourceAgg
    {
        size_t workloads = 0;
        std::vector<double> powers;
    };
    std::map<std::string, SourceAgg> agg;
    for (const auto &w : res.workloads)
        ++agg[w.source].workloads;
    for (size_t i = 0; i < res.samples.size(); ++i)
        agg[res.workloads[res.jobs[i].workload].source]
            .powers.push_back(res.samples[i].powerWatts);

    TextTable t({"Source", "Workloads", "Samples", "Min W",
                 "Mean W", "Max W"});
    for (const auto &[name, a] : agg)
        t.addRow({name, std::to_string(a.workloads),
                  std::to_string(a.powers.size()),
                  TextTable::num(minOf(a.powers), 2),
                  TextTable::num(mean(a.powers), 2),
                  TextTable::num(maxOf(a.powers), 2)});
    t.print(std::cout);

    size_t total = res.cacheHits + res.cacheMisses;
    std::cout << res.samples.size() << " samples; cache: "
              << res.cacheHits << " hits / " << res.cacheMisses
              << " misses";
    if (total > 0 && !spec.cacheDir.empty())
        std::cout << " ("
                  << TextTable::num(100.0 * res.cacheHits /
                                        static_cast<double>(total),
                                    1)
                  << "% hit rate)";
    const CampaignSpec &run_spec = campaign.specRef();
    if (run_spec.sharded())
        std::cout << "\nshard " << run_spec.shardIndex << "/"
                  << run_spec.shardCount << " measured "
                  << res.jobs.size() << " of " << res.totalJobs
                  << " campaign jobs; run all shards into this "
                     "cache, then --merge for the unified export";
    std::cout << "\n";

    if (!args.get("metrics-json").empty()) {
        // specRef() carries the resolved (non-auto) thread count.
        writeMetricsJson(args.get("metrics-json"),
                         campaign.specRef(), res, true);
        std::cout << "wrote " << args.get("metrics-json") << "\n";
    }
    if (!args.get("metrics-json-stable").empty()) {
        writeMetricsJson(args.get("metrics-json-stable"),
                         campaign.specRef(), res, false);
        std::cout << "wrote " << args.get("metrics-json-stable")
                  << "\n";
    }
    if (!args.get("csv").empty()) {
        exportSamples(args.get("csv"), res.samples,
                      SampleFormat::Csv);
        std::cout << "wrote " << args.get("csv") << "\n";
    }
    if (!args.get("json").empty()) {
        exportSamples(args.get("json"), res.samples,
                      SampleFormat::Json);
        std::cout << "wrote " << args.get("json") << "\n";
    }
    if (!trace_path.empty()) {
        // Quiescent by construction: campaign.run joined every
        // worker thread, and exports run on this thread only.
        obs::traceDisable();
        if (obs::traceFlush(trace_path))
            std::cout << "wrote " << trace_path << "\n";
    }
    return 0;
}
