/**
 * @file
 * mprobe-gen: generate micro-benchmarks from the command line.
 *
 *   mprobe-gen --arch POWER7 --class loads --mem 0.33,0.33,0.34,0 \
 *              --dep random:1:32 --count 10 --out ./out
 *
 * Produces `ubench-<n>.c` files (and optionally runs each one on
 * the simulated machine to report its counters).
 */

#include <iostream>

#include "microprobe/emitter.hh"
#include "microprobe/passes.hh"
#include "microprobe/synthesizer.hh"
#include "sim/machine.hh"
#include "util/args.hh"
#include "util/logging.hh"
#include "util/str.hh"

using namespace mprobe;

namespace
{

std::vector<Isa::OpIndex>
candidatesFor(const Isa &isa, const std::string &cls)
{
    if (cls == "loads")
        return isa.loads();
    if (cls == "stores")
        return isa.stores();
    if (cls == "memory")
        return isa.memoryOps();
    if (cls == "integer")
        return isa.integerOps();
    if (cls == "fpvector")
        return isa.fpVectorOps();
    if (cls == "all")
        return isa.select([](const InstrDef &d) {
            return !d.privileged && !d.isBranch();
        });
    // Otherwise a comma-separated mnemonic list.
    std::vector<Isa::OpIndex> out;
    for (const auto &name : split(cls, ','))
        out.push_back(isa.find(trim(name)));
    for (auto op : out)
        if (op < 0)
            fatal(cat("unknown instruction in --class '", cls,
                      "'"));
    return out;
}

DependencyDistancePass
depPassFor(const std::string &spec)
{
    auto parts = split(spec, ':');
    if (parts[0] == "none")
        return DependencyDistancePass::none();
    if (parts[0] == "chain")
        return DependencyDistancePass::chain();
    if (parts[0] == "fixed" && parts.size() == 2)
        return DependencyDistancePass::fixed(static_cast<int>(
            parseInt(parts[1], "--dep")));
    if (parts[0] == "random" && parts.size() == 3)
        return DependencyDistancePass::random(
            static_cast<int>(parseInt(parts[1], "--dep")),
            static_cast<int>(parseInt(parts[2], "--dep")));
    fatal(cat("bad --dep spec '", spec,
              "' (none|chain|fixed:N|random:LO:HI)"));
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args;
    args.addOption("arch", "POWER7", "target architecture name");
    args.addOption("class", "integer",
                   "candidate set: loads|stores|memory|integer|"
                   "fpvector|all or comma-separated mnemonics");
    args.addOption("size", "4096", "loop body size");
    args.addOption("mem", "",
                   "L1,L2,L3,MEM hit distribution for memory ops "
                   "(e.g. 0.33,0.33,0.34,0)");
    args.addOption("dep", "random:1:32",
                   "dependency distances: none|chain|fixed:N|"
                   "random:LO:HI");
    args.addOption("data", "random",
                   "register/immediate init: zero|pattern|random");
    args.addOption("count", "1", "number of benchmarks");
    args.addOption("seed", "1", "generation seed");
    args.addOption("out", ".", "output directory");
    args.addFlag("run", "also run each benchmark (1 core, SMT-1) "
                        "and print counters");
    args.addFlag("quiet", "suppress status messages");
    args.parse(argc, argv,
               "Generate MicroProbe micro-benchmarks as C files.");

    if (args.getFlag("quiet"))
        setLogLevel(LogLevel::Quiet);

    Architecture arch = Architecture::get(args.get("arch"));
    auto cands = candidatesFor(arch.isa(), args.get("class"));

    DataPattern pat = DataPattern::Random;
    if (args.get("data") == "zero")
        pat = DataPattern::Zero;
    else if (args.get("data") == "pattern")
        pat = DataPattern::Alt01;
    else if (args.get("data") != "random")
        fatal("--data must be zero|pattern|random");

    Synthesizer synth(arch,
                      static_cast<uint64_t>(args.getInt("seed")));
    synth.addPass<SkeletonPass>(
        static_cast<size_t>(args.getInt("size")));
    synth.addPass<InstructionMixPass>(cands);
    if (!args.get("mem").empty()) {
        auto f = split(args.get("mem"), ',');
        if (f.size() != 4)
            fatal("--mem needs four comma-separated shares");
        MemDistribution d{parseDouble(f[0], "--mem"),
                          parseDouble(f[1], "--mem"),
                          parseDouble(f[2], "--mem"),
                          parseDouble(f[3], "--mem")};
        synth.addPass<MemoryModelPass>(d);
    }
    synth.addPass<RegisterInitPass>(pat);
    synth.addPass<ImmediateInitPass>(pat);
    synth.add(std::make_unique<DependencyDistancePass>(
        depPassFor(args.get("dep"))));

    Machine machine(arch.isa());
    long count = args.getInt("count");
    for (long i = 1; i <= count; ++i) {
        Program p = synth.synthesize();
        std::string path =
            args.get("out") + "/" + p.name + ".c";
        saveC(p, path);
        std::cout << "wrote " << path << "\n";
        if (args.getFlag("run")) {
            RunResult r = machine.run(p, ChipConfig{1, 1});
            double tot = r.chip.l1Hits + r.chip.l2Hits +
                         r.chip.l3Hits + r.chip.memAcc;
            std::cout << "  ipc " << r.coreIpc << "  power "
                      << r.sensorWatts << " W";
            if (tot > 0)
                std::cout << "  L1/L2/L3/MEM "
                          << r.chip.l1Hits / tot << "/"
                          << r.chip.l2Hits / tot << "/"
                          << r.chip.l3Hits / tot << "/"
                          << r.chip.memAcc / tot;
            std::cout << "\n";
        }
    }
    return 0;
}
