/**
 * @file
 * mprobe_lint: the project invariant linter CLI.
 *
 * Runs the token-level rules (nondeterminism, unordered-iteration,
 * obs-isolation, hot-path-alloc) over every .cc/.hh file under
 * src/ bench/ tests/
 * tools/ and cross-references the fingerprint-coverage pairs. Prints
 * one `file:line: [rule] message` per finding and exits non-zero if
 * anything fired; CI runs it from the lint job next to clang-format.
 * See src/lint/lint.hh for the rules and their in-source exemption
 * annotations.
 */

#include <cstdio>

#include "lint/lint.hh"
#include "util/args.hh"

using namespace mprobe;

int
main(int argc, char **argv)
{
    ArgParser args;
    args.addOption("root", ".",
                   "repo checkout to lint (contains src/, bench/, "
                   "tests/, tools/)");
    args.parse(argc, argv,
               "mprobe invariant linter: determinism, byte-identity "
               "and hot-path rules the compiler cannot check");

    std::vector<LintFinding> findings = lintTree(args.get("root"));
    for (const LintFinding &f : findings)
        std::fprintf(stderr, "%s\n", f.format().c_str());
    if (!findings.empty()) {
        std::fprintf(stderr,
                     "mprobe_lint: %zu finding(s). See "
                     "src/lint/lint.hh for the rules and the "
                     "'// lint: <tag>(<reason>)' exemption "
                     "syntax.\n",
                     findings.size());
        return 1;
    }
    std::printf("mprobe_lint: clean\n");
    return 0;
}
