/**
 * @file
 * mprobe-run: deploy a generated benchmark across configurations
 * and print the measured counters and power, one row per
 * configuration — the measurement loop of Section 3 as a tool.
 *
 *   mprobe-run --class fpvector --dep none --configs 1-1,8-4
 */

#include <iostream>

#include "microprobe/passes.hh"
#include "microprobe/synthesizer.hh"
#include "sim/machine.hh"
#include "util/args.hh"
#include "util/logging.hh"
#include "util/str.hh"
#include "util/table.hh"

using namespace mprobe;

int
main(int argc, char **argv)
{
    ArgParser args;
    args.addOption("arch", "POWER7", "target architecture name");
    args.addOption("class", "integer",
                   "candidate set (see mprobe-gen)");
    args.addOption("size", "4096", "loop body size");
    args.addOption("dep", "none",
                   "dependency distances: none|chain|fixed:N|"
                   "random:LO:HI");
    args.addOption("configs", "all",
                   "comma-separated cores-smt list (e.g. 1-1,8-4) "
                   "or 'all' for the 24 paper configurations");
    args.addOption("seed", "1", "generation seed");
    args.addFlag("quiet", "suppress status messages");
    args.parse(argc, argv,
               "Run a generated micro-benchmark across CMP/SMT "
               "configurations.");

    if (args.getFlag("quiet"))
        setLogLevel(LogLevel::Quiet);

    Architecture arch = Architecture::get(args.get("arch"));
    Machine machine(arch.isa(),
                    arch.uarch().cacheGeometries(),
                    arch.uarch().clockGhz());

    // Candidate set (subset of mprobe-gen's vocabulary).
    std::vector<Isa::OpIndex> cands;
    const std::string cls = args.get("class");
    if (cls == "loads")
        cands = arch.isa().loads();
    else if (cls == "stores")
        cands = arch.isa().stores();
    else if (cls == "memory")
        cands = arch.isa().memoryOps();
    else if (cls == "integer")
        cands = arch.isa().integerOps();
    else if (cls == "fpvector")
        cands = arch.isa().fpVectorOps();
    else {
        for (const auto &name : split(cls, ','))
            cands.push_back(arch.isa().find(trim(name)));
        for (auto op : cands)
            if (op < 0)
                fatal(cat("unknown instruction in --class '", cls,
                          "'"));
    }

    Synthesizer synth(arch,
                      static_cast<uint64_t>(args.getInt("seed")));
    synth.addPass<SkeletonPass>(
        static_cast<size_t>(args.getInt("size")));
    synth.addPass<InstructionMixPass>(cands);
    synth.addPass<MemoryModelPass>(MemDistribution{1, 0, 0, 0});
    synth.addPass<RegisterInitPass>(DataPattern::Random);
    auto spec = split(args.get("dep"), ':');
    if (spec[0] == "chain")
        synth.add(std::make_unique<DependencyDistancePass>(
            DependencyDistancePass::chain()));
    else if (spec[0] == "fixed" && spec.size() == 2)
        synth.add(std::make_unique<DependencyDistancePass>(
            DependencyDistancePass::fixed(static_cast<int>(
                parseInt(spec[1], "--dep")))));
    else if (spec[0] == "random" && spec.size() == 3)
        synth.add(std::make_unique<DependencyDistancePass>(
            DependencyDistancePass::random(
                static_cast<int>(parseInt(spec[1], "--dep")),
                static_cast<int>(parseInt(spec[2], "--dep")))));
    else
        synth.add(std::make_unique<DependencyDistancePass>(
            DependencyDistancePass::none()));
    Program p = synth.synthesize("mprobe-run");

    std::vector<ChipConfig> configs;
    if (args.get("configs") == "all") {
        configs = ChipConfig::all();
    } else {
        for (const auto &c : split(args.get("configs"), ',')) {
            auto parts = split(trim(c), '-');
            if (parts.size() != 2)
                fatal(cat("bad config '", c, "' (want cores-smt)"));
            configs.push_back(
                {static_cast<int>(parseInt(parts[0], "--configs")),
                 static_cast<int>(
                     parseInt(parts[1], "--configs"))});
        }
    }

    TextTable t({"Config", "IPC", "Power(W)", "Ginstr/s", "L1",
                 "L2", "L3", "MEM"});
    for (const auto &cfg : configs) {
        RunResult r = machine.run(p, cfg);
        double tot = r.chip.l1Hits + r.chip.l2Hits +
                     r.chip.l3Hits + r.chip.memAcc;
        auto share = [&](double v) {
            return tot > 0 ? TextTable::num(v / tot, 2) : "-";
        };
        t.addRow({cfg.label(), TextTable::num(r.coreIpc, 2),
                  TextTable::num(r.sensorWatts, 2),
                  TextTable::num(r.rate(r.chip.instrs) / 1e9, 2),
                  share(r.chip.l1Hits), share(r.chip.l2Hits),
                  share(r.chip.l3Hits), share(r.chip.memAcc)});
    }
    t.print(std::cout);
    return 0;
}
