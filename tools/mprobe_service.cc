/**
 * @file
 * mprobe-service: long-lived campaign service — watch a drop
 * directory for campaign specs, feed their jobs through one shared
 * claim pool + result cache, and stream per-campaign status and
 * incremental exports.
 *
 *   mprobe-service --drop-dir specs --cache-dir pool \
 *                  --results-dir out
 *   # elsewhere, submit a campaign:
 *   cp sweep.spec specs/
 *   # watch out/sweep/status.json, out/sweep/partial.csv, and
 *   # finally out/sweep/samples.csv
 *
 * Any number of service processes (and plain `mprobe_campaign
 * --serve` workers) may share the cache directory; claim files
 * coordinate them and dead peers are stolen from after the TTL.
 */

#include <iostream>

#include "obs/trace.hh"
#include "service/service.hh"
#include "util/args.hh"
#include "util/logging.hh"
#include "util/str.hh"

using namespace mprobe;

int
main(int argc, char **argv)
{
    ArgParser args;
    args.addOption("drop-dir", "",
                   "directory watched for dropped <name>.spec "
                   "campaign files (created if absent)");
    args.addOption("cache-dir", "",
                   "shared result cache + claim pool directory "
                   "(share it across the whole fleet)");
    args.addOption("results-dir", "",
                   "per-campaign output root: "
                   "<results-dir>/<name>/ receives the manifest, "
                   "status.json, partial and final exports");
    args.addOption("threads", "",
                   "worker threads draining the pool (0 = one per "
                   "hardware thread)");
    args.addOption("poll-seconds", "",
                   "seconds between drop-directory scans "
                   "(default 1)");
    args.addOption("status-seconds", "",
                   "seconds between status/partial-export "
                   "refreshes (default 5)");
    args.addOption("claim-ttl", "",
                   "seconds before a claim with no heartbeat "
                   "counts as dead and its job is stolen "
                   "(default 60)");
    args.addOption("worker-id", "",
                   "claim-file worker identity (default "
                   "host:pid)");
    args.addOption("arch", "POWER7", "target architecture name");
    args.addFlag("exit-when-idle",
                 "exit once every ingested campaign is complete "
                 "and a scan finds no new specs (CI/batch use); "
                 "default runs until interrupted");
    args.addOption("trace", "",
                   "record a Chrome trace-event timeline of this "
                   "service run (spec ingestion, per-job spans, "
                   "claim events, sim stages) and write it to this "
                   "path at exit; load it in chrome://tracing or "
                   "https://ui.perfetto.dev. Observability only: "
                   "exports stay byte-identical");
    args.addFlag("quiet", "suppress status messages");
    args.parse(argc, argv,
               "Serve campaign specs dropped into a directory "
               "over a shared work-stealing fleet pool.");

    if (args.getFlag("quiet"))
        setLogLevel(LogLevel::Quiet);

    ServiceOptions opts;
    opts.dropDir = args.get("drop-dir");
    opts.cacheDir = args.get("cache-dir");
    opts.resultsDir = args.get("results-dir");
    if (!args.get("threads").empty())
        opts.threads = static_cast<int>(args.getInt("threads"));
    if (!args.get("poll-seconds").empty())
        opts.pollSeconds = parseDouble(args.get("poll-seconds"),
                                       "--poll-seconds");
    if (!args.get("status-seconds").empty())
        opts.statusSeconds = parseDouble(
            args.get("status-seconds"), "--status-seconds");
    if (!args.get("claim-ttl").empty()) {
        opts.claimTtlSeconds =
            parseDouble(args.get("claim-ttl"), "--claim-ttl");
        if (opts.claimTtlSeconds <= 0)
            fatal("--claim-ttl must be > 0 seconds");
    }
    opts.workerId = args.get("worker-id");
    opts.archName = args.get("arch");
    opts.exitWhenIdle = args.getFlag("exit-when-idle");

    const std::string trace_path = args.get("trace");
    if (!trace_path.empty())
        obs::traceEnable();

    CampaignService service(std::move(opts));
    size_t completed = service.run();
    std::cout << completed << " campaigns completed\n";
    if (!trace_path.empty()) {
        // run() joined every worker thread before returning, so
        // this flush reads quiescent ring buffers.
        obs::traceDisable();
        if (obs::traceFlush(trace_path))
            std::cout << "wrote " << trace_path << "\n";
    }
    return 0;
}
