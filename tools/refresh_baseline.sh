#!/bin/sh
# Regenerate BENCH_baseline.json exactly the way CI measures it
# (.github/workflows/ci.yml, "Campaign perf metrics" +
# "Batched-identity smoke"): the perf and DVFS-sweep specs, each
# run cache-cold and cache-warm single-threaded, plus the batched
# legs from a second cold run of the perf spec, assembled with jq
# into the six legs the ratcheting perf gate compares.
#
# Run it from the repository root on the machine class CI uses,
# with an up-to-date Release build in build/, then commit the
# refreshed file. The gate fails when measured throughput exceeds
# 2x the committed baseline, so every real speedup must land
# together with the output of this script.
set -eu

repo=$(cd "$(dirname "$0")/.." && pwd)
bin="$repo/build/mprobe_campaign"
out="$repo/BENCH_baseline.json"
[ -x "$bin" ] || {
    echo "error: $bin not built (cmake -B build -S . " \
         "-DCMAKE_BUILD_TYPE=Release && cmake --build build)" >&2
    exit 1
}
# A sanitized build must never become the baseline: its timings
# are 5-20x off, and a slow baseline blinds the ratchet (every
# later regression would still beat it).
grep -q 'MPROBE_SANITIZE:[^=]*=OFF' "$repo/build/CMakeCache.txt" || {
    echo "error: build/ is a sanitized configuration" \
         "(MPROBE_SANITIZE != OFF); rebuild plain Release before" \
         "refreshing the baseline" >&2
    exit 1
}

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT
cd "$work"

# Keep these spec bodies in lockstep with ci.yml: the baseline is
# only meaningful against the exact job mix CI measures.
printf '%s\n' 'categories = memory, random' \
    'configs = all' 'random_count = 8' \
    'per_memory_group = 1' 'memory_count = 2' \
    'body_size = 1024' 'bootstrap = 0' \
    'threads = 1' > perf.spec
printf '%s\n' 'categories = memory, random' \
    'configs = 1-1,2-2,4-2,8-4' \
    'freqs = 2.0,2.5,3.0,3.5' 'random_count = 8' \
    'per_memory_group = 1' 'memory_count = 2' \
    'body_size = 1024' 'bootstrap = 0' \
    'threads = 1' > sweep-perf.spec

"$bin" --spec perf.spec --cache-dir perf-cache --quiet \
    --metrics-json-stable cold.json
"$bin" --spec perf.spec --cache-dir perf-cache --quiet \
    --metrics-json-stable warm.json
"$bin" --spec sweep-perf.spec --cache-dir sweep-cache --quiet \
    --metrics-json-stable sweep_cold.json
"$bin" --spec sweep-perf.spec --cache-dir sweep-cache --quiet \
    --metrics-json-stable sweep_warm.json
"$bin" --spec perf.spec --cache-dir batched-cache --quiet \
    --metrics-json-stable batched_cold.json
"$bin" --spec perf.spec --cache-dir batched-cache --quiet \
    --metrics-json-stable batched_warm.json

# Same family of tripwire as the sanitizer check above, but
# caught post-hoc from the run itself: a baseline measured with
# tracing enabled at runtime would bake the recorder's overhead
# into the ratchet. The stable metrics JSON records whether
# traceEnable() ever ran in the measuring process.
if grep -q '"trace_active": true' cold.json warm.json \
    sweep_cold.json sweep_warm.json batched_cold.json \
    batched_warm.json; then
    echo "error: a measurement ran with tracing enabled" \
         "(trace_active=true in its metrics); refresh the" \
         "baseline without --trace" >&2
    exit 1
fi

jq -s '{cold: .[0], warm: .[1],
        sweep_cold: .[2], sweep_warm: .[3],
        batched_cold: .[4], batched_warm: .[5]}' \
    cold.json warm.json sweep_cold.json sweep_warm.json \
    batched_cold.json batched_warm.json > "$out"

echo "wrote $out:"
jq -r 'to_entries[] |
       "  \(.key): \(.value.jobs_per_second) jobs/sec"' "$out"
